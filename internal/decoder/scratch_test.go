package decoder

import (
	"fmt"
	"testing"

	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// TestScratchSyndromeMatchesCode checks the arena's syndrome fast path
// against the reference surfacecode.Code.Syndrome on random frames.
func TestScratchSyndromeMatchesCode(t *testing.T) {
	code := surfacecode.MustNew(7, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.15, 0.15)
	src := rng.New(11)
	s := NewScratch()
	for trial := 0; trial < 50; trial++ {
		frame, _ := nm.Sample(src.SplitN("t", trial))
		for _, kind := range []surfacecode.GraphKind{surfacecode.ZGraph, surfacecode.XGraph} {
			want := code.Syndrome(kind, frame)
			got := s.syndrome(code, kind, frame, nil)
			if len(got) != len(want) {
				t.Fatalf("trial %d kind %v: %d syndromes, want %d", trial, kind, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d kind %v: syndrome %v, want %v", trial, kind, got, want)
				}
			}
		}
	}
}

// TestDecodeFrameWithMatchesAllocatingPath checks that one reused arena
// produces byte-identical decode results to the allocating path, across
// every decoder, for a long stream of random frames. This is the contract
// the deterministic parallel trial engine relies on: a worker's scratch must
// never leak state between trials.
func TestDecodeFrameWithMatchesAllocatingPath(t *testing.T) {
	code := surfacecode.MustNew(7, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.08, 0.15)
	probs := nm.EdgeErrorProb()
	decoders := []Decoder{
		UnionFind{},
		SurfNet{},
		SurfNet{FiniteErasureGrowth: true},
		MWPM{}, // scratch path must match its private-arena decode exactly
	}
	for _, dec := range decoders {
		t.Run(fmt.Sprintf("%s/finite=%v", dec.Name(), dec), func(t *testing.T) {
			src := rng.New(23)
			s := NewScratch()
			for trial := 0; trial < 40; trial++ {
				frame, erased := nm.Sample(src.SplitN("t", trial))
				want, wantStats, err := DecodeFrameMetered(code, dec, frame, erased, probs, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, gotStats, err := DecodeFrameWith(code, dec, frame, erased, probs, nil, s)
				if err != nil {
					t.Fatal(err)
				}
				if got.LogicalX != want.LogicalX || got.LogicalZ != want.LogicalZ {
					t.Fatalf("trial %d: logical (%v,%v), want (%v,%v)",
						trial, got.LogicalX, got.LogicalZ, want.LogicalX, want.LogicalZ)
				}
				if len(got.Residual) != len(want.Residual) {
					t.Fatalf("trial %d: residual length %d, want %d", trial, len(got.Residual), len(want.Residual))
				}
				for q := range want.Residual {
					if got.Residual[q] != want.Residual[q] {
						t.Fatalf("trial %d: residual diverges at qubit %d", trial, q)
					}
				}
				if gotStats.SyndromeWeight != wantStats.SyndromeWeight ||
					gotStats.CorrectionWeight != wantStats.CorrectionWeight {
					t.Fatalf("trial %d: stats %+v, want %+v", trial, gotStats, wantStats)
				}
			}
		})
	}
}

// TestDecodeWithNilScratchEqualsDecode pins DecodeWith(in, nil) == Decode.
func TestDecodeWithNilScratchEqualsDecode(t *testing.T) {
	code := surfacecode.MustNew(5, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.1, 0.1)
	frame, erased := nm.Sample(rng.New(3))
	in := Input{
		Graph:     code.Graph(surfacecode.ZGraph),
		Syndromes: code.Syndrome(surfacecode.ZGraph, frame),
		Erased:    erased,
		ErrorProb: nm.EdgeErrorProb(),
	}
	for _, d := range []ScratchDecoder{UnionFind{}, SurfNet{}} {
		a, err := d.Decode(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.DecodeWith(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: %v vs %v", d.Name(), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: corrections diverge: %v vs %v", d.Name(), a, b)
			}
		}
	}
}

// BenchmarkDecodeFrameAllocs compares the allocating frame decode against
// the scratch-arena path; the scratch variant's allocs/op should sit near
// zero in steady state (run with -benchmem).
func BenchmarkDecodeFrameAllocs(b *testing.B) {
	for _, d := range []int{9, 15} {
		code := surfacecode.MustNew(d, surfacecode.CoreLShape)
		nm := surfacecode.UniformNoise(code, 0.07, 0.15)
		probs := nm.EdgeErrorProb()
		for _, dec := range []Decoder{UnionFind{}, SurfNet{}} {
			b.Run(fmt.Sprintf("%s/d=%d/alloc", dec.Name(), d), func(b *testing.B) {
				b.ReportAllocs()
				src := rng.New(99)
				for i := 0; i < b.N; i++ {
					frame, erased := nm.Sample(src.SplitN("t", i))
					if _, _, err := DecodeFrameMetered(code, dec, frame, erased, probs, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/d=%d/scratch", dec.Name(), d), func(b *testing.B) {
				b.ReportAllocs()
				src := rng.New(99)
				s := NewScratch()
				var frame quantum.Frame
				var erased []bool
				for i := 0; i < b.N; i++ {
					frame, erased = nm.SampleInto(src.SplitN("t", i), frame, erased)
					if _, _, err := DecodeFrameWith(code, dec, frame, erased, probs, nil, s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
