package decoder

import (
	"testing"

	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

var allDecoders = []Decoder{MWPM{}, UnionFind{}, SurfNet{}}

// uniformInput builds a decoding Input for code c with uniform error prob p
// and the given erasure mask and syndromes.
func uniformInput(c *surfacecode.Code, kind surfacecode.GraphKind, syn []int, erased []bool, p float64) Input {
	probs := make([]float64, c.NumData())
	for i := range probs {
		probs[i] = p
	}
	if erased == nil {
		erased = make([]bool, c.NumData())
	}
	return Input{Graph: c.Graph(kind), Syndromes: syn, Erased: erased, ErrorProb: probs}
}

func TestValidation(t *testing.T) {
	c := surfacecode.MustNew(3, surfacecode.CoreLShape)
	for _, dec := range allDecoders {
		if _, err := dec.Decode(Input{}); err == nil {
			t.Errorf("%s: nil graph should fail", dec.Name())
		}
		in := uniformInput(c, surfacecode.ZGraph, []int{999}, nil, 0.1)
		if _, err := dec.Decode(in); err == nil {
			t.Errorf("%s: out-of-range syndrome should fail", dec.Name())
		}
		in = uniformInput(c, surfacecode.ZGraph, nil, nil, 0.1)
		in.Erased = in.Erased[:2]
		if _, err := dec.Decode(in); err == nil {
			t.Errorf("%s: short erasure mask should fail", dec.Name())
		}
	}
}

func TestEmptySyndrome(t *testing.T) {
	c := surfacecode.MustNew(3, surfacecode.CoreLShape)
	for _, dec := range allDecoders {
		corr, err := dec.Decode(uniformInput(c, surfacecode.ZGraph, nil, nil, 0.1))
		if err != nil || len(corr) != 0 {
			t.Errorf("%s: empty syndrome gave corr=%v err=%v", dec.Name(), corr, err)
		}
	}
}

func TestSingleErrorsAlwaysCorrected(t *testing.T) {
	// Any single Pauli error on any qubit must be corrected without a
	// logical error at distance >= 3, by every decoder.
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	probs := make([]float64, c.NumData())
	for i := range probs {
		probs[i] = 0.05
	}
	erased := make([]bool, c.NumData())
	for _, dec := range allDecoders {
		for q := 0; q < c.NumData(); q++ {
			for _, p := range []quantum.Pauli{quantum.X, quantum.Y, quantum.Z} {
				f := quantum.NewFrame(c.NumData())
				f[q] = p
				res, err := DecodeFrame(c, dec, f, erased, probs)
				if err != nil {
					t.Fatalf("%s: qubit %d %v: %v", dec.Name(), q, p, err)
				}
				if res.Failed() {
					t.Errorf("%s: single %v on qubit %d caused a logical error", dec.Name(), p, q)
				}
			}
		}
	}
}

func TestRandomErrorsAlwaysValid(t *testing.T) {
	// Decoders must clear every syndrome (DecodeFrame errors otherwise)
	// on random Pauli+erasure inputs of varying rates and distances.
	src := rng.New(808)
	for _, d := range []int{2, 3, 4, 5, 7} {
		c := surfacecode.MustNew(d, surfacecode.CoreLShape)
		for _, p := range []float64{0.02, 0.08, 0.15} {
			for _, e := range []float64{0, 0.15, 0.4} {
				nm := surfacecode.UniformNoise(c, p, e)
				probs := nm.EdgeErrorProb()
				for trial := 0; trial < 12; trial++ {
					f, erased := nm.Sample(src.SplitN("t", d*1000+trial))
					for _, dec := range allDecoders {
						if _, err := DecodeFrame(c, dec, f, erased, probs); err != nil {
							t.Fatalf("%s d=%d p=%v e=%v trial %d: %v",
								dec.Name(), d, p, e, trial, err)
						}
					}
				}
			}
		}
	}
}

func TestMWPMPrefersShortPath(t *testing.T) {
	// Two adjacent syndromes from one bulk error: the correction must be
	// that single qubit, not a long detour.
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	q := c.DataIndex(surfacecode.Coord{Row: 3, Col: 3}) // bulk vertical data qubit
	f := quantum.NewFrame(c.NumData())
	f[q] = quantum.X
	syn := c.Syndrome(surfacecode.ZGraph, f)
	if len(syn) != 2 {
		t.Fatalf("expected 2 syndromes, got %d", len(syn))
	}
	corr, err := MWPM{}.Decode(uniformInput(c, surfacecode.ZGraph, syn, nil, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(corr) != 1 || corr[0] != q {
		t.Fatalf("correction = %v, want [%d]", corr, q)
	}
}

func TestMWPMBoundaryMatch(t *testing.T) {
	// An error on a boundary qubit yields one syndrome; the cheapest fix
	// is matching it straight back to the boundary.
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	q := c.DataIndex(surfacecode.Coord{Row: 4, Col: 0})
	f := quantum.NewFrame(c.NumData())
	f[q] = quantum.X
	syn := c.Syndrome(surfacecode.ZGraph, f)
	if len(syn) != 1 {
		t.Fatalf("expected 1 syndrome, got %d", len(syn))
	}
	corr, err := MWPM{}.Decode(uniformInput(c, surfacecode.ZGraph, syn, nil, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(corr) != 1 || corr[0] != q {
		t.Fatalf("correction = %v, want [%d]", corr, q)
	}
}

func TestWeightsSteerMWPM(t *testing.T) {
	// Two syndromes two steps apart; the direct path runs through a qubit
	// with tiny error probability while a known erasure detour exists.
	// With fidelity weighting the decoder must route around the reliable
	// qubit... we verify the simpler directional fact: marking the direct
	// path as erased makes the decoder choose it, and marking it as
	// near-perfect makes the decoder avoid it.
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	qa := c.DataIndex(surfacecode.Coord{Row: 3, Col: 3})
	qb := c.DataIndex(surfacecode.Coord{Row: 5, Col: 3})
	f := quantum.NewFrame(c.NumData())
	f[qa] = quantum.X
	f[qb] = quantum.X
	syn := c.Syndrome(surfacecode.ZGraph, f) // two syndromes, distance 2
	if len(syn) != 2 {
		t.Fatalf("expected 2 syndromes, got %d", len(syn))
	}
	in := uniformInput(c, surfacecode.ZGraph, syn, nil, 0.05)
	in.Erased[qa] = true
	in.Erased[qb] = true
	corr, err := MWPM{}.Decode(in)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, q := range corr {
		got[q] = true
	}
	if len(corr) != 2 || !got[qa] || !got[qb] {
		t.Fatalf("correction = %v, want the erased direct path [%d %d]", corr, qa, qb)
	}
}

func TestSurfNetPrefersErasures(t *testing.T) {
	// Same two-syndrome setup: when the connecting path is erased, the
	// SurfNet decoder must grow through it quickly and correct exactly
	// there.
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	qa := c.DataIndex(surfacecode.Coord{Row: 3, Col: 3})
	qb := c.DataIndex(surfacecode.Coord{Row: 5, Col: 3})
	f := quantum.NewFrame(c.NumData())
	f[qa] = quantum.X
	f[qb] = quantum.X
	syn := c.Syndrome(surfacecode.ZGraph, f)
	in := uniformInput(c, surfacecode.ZGraph, syn, nil, 0.02)
	in.Erased[qa] = true
	in.Erased[qb] = true
	corr, err := SurfNet{}.Decode(in)
	if err != nil {
		t.Fatal(err)
	}
	// The residual must clear the syndrome and not wrap a logical.
	res := f.Clone()
	for _, q := range corr {
		res.Apply(q, quantum.X)
	}
	if len(c.Syndrome(surfacecode.ZGraph, res)) != 0 {
		t.Fatal("correction does not clear the syndrome")
	}
	if c.HasLogicalError(surfacecode.ZGraph, res) {
		t.Fatal("erasure-guided correction wrapped a logical operator")
	}
}

func TestErasureOnlyInputs(t *testing.T) {
	// Erasures with no syndromes: nothing to correct, but the UF decoder
	// pre-grows erasure support and must still return cleanly.
	c := surfacecode.MustNew(3, surfacecode.CoreLShape)
	erased := make([]bool, c.NumData())
	erased[0] = true
	erased[5] = true
	for _, dec := range allDecoders {
		corr, err := dec.Decode(uniformInput(c, surfacecode.ZGraph, nil, erased, 0.05))
		if err != nil {
			t.Errorf("%s: erasure-only decode failed: %v", dec.Name(), err)
		}
		if len(corr) != 0 {
			t.Errorf("%s: erasure-only decode returned corrections %v", dec.Name(), corr)
		}
	}
}

func TestPeelHandBuilt(t *testing.T) {
	// Chain of two vertical qubits between three Z-ancillas; syndromes at
	// the two ends. Peeling over exactly that support must flip both.
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	qa := c.DataIndex(surfacecode.Coord{Row: 3, Col: 3})
	qb := c.DataIndex(surfacecode.Coord{Row: 5, Col: 3})
	f := quantum.NewFrame(c.NumData())
	f[qa] = quantum.X
	f[qb] = quantum.X
	syn := c.Syndrome(surfacecode.ZGraph, f)
	in := uniformInput(c, surfacecode.ZGraph, syn, nil, 0.05)
	// Dense edge indices equal data-qubit ids in construction order.
	corr, err := peel(in, []int{qa, qb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, q := range corr {
		got[q] = true
	}
	if len(corr) != 2 || !got[qa] || !got[qb] {
		t.Fatalf("peel correction = %v, want [%d %d]", corr, qa, qb)
	}
}

func TestPeelDetectsBadSupport(t *testing.T) {
	// A lone syndrome with support that reaches neither boundary nor a
	// second syndrome violates the cluster invariant.
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	qa := c.DataIndex(surfacecode.Coord{Row: 3, Col: 3})
	f := quantum.NewFrame(c.NumData())
	f[qa] = quantum.X
	syn := c.Syndrome(surfacecode.ZGraph, f)[:1]
	in := uniformInput(c, surfacecode.ZGraph, syn, nil, 0.05)
	if _, err := peel(in, nil, nil); err == nil {
		t.Fatal("peel should reject support violating the cluster invariant")
	}
}

func TestLogicalErrorRatesOrdering(t *testing.T) {
	// Logical error rate must grow with physical error rate, and at
	// moderate rates sit strictly between 0 and 1/2 for d=5.
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	rate := func(dec Decoder, p float64, trials int) float64 {
		src := rng.New(31337)
		nm := surfacecode.UniformNoise(c, p, 0.05)
		probs := nm.EdgeErrorProb()
		fails := 0
		for i := 0; i < trials; i++ {
			f, erased := nm.Sample(src.SplitN("trial", i))
			res, err := DecodeFrame(c, dec, f, erased, probs)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				fails++
			}
		}
		return float64(fails) / float64(trials)
	}
	for _, dec := range allDecoders {
		lo := rate(dec, 0.02, 400)
		hi := rate(dec, 0.14, 400)
		if lo >= hi {
			t.Errorf("%s: logical rate not increasing: p=0.02 -> %v, p=0.14 -> %v", dec.Name(), lo, hi)
		}
		if hi == 0 {
			t.Errorf("%s: suspiciously perfect at p=0.14", dec.Name())
		}
		if lo > 0.25 {
			t.Errorf("%s: logical rate %v at p=0.02 is far too high", dec.Name(), lo)
		}
	}
}

func TestDecoderNames(t *testing.T) {
	want := map[string]bool{"mwpm": true, "union-find": true, "surfnet": true}
	for _, dec := range allDecoders {
		if !want[dec.Name()] {
			t.Errorf("unexpected decoder name %q", dec.Name())
		}
	}
}

func TestSurfNetStepSizeConfigurable(t *testing.T) {
	// Different step sizes must still produce valid corrections.
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	src := rng.New(55)
	nm := surfacecode.UniformNoise(c, 0.1, 0.15)
	probs := nm.EdgeErrorProb()
	for _, r := range []float64{0.25, 2.0 / 3.0, 1.5} {
		dec := SurfNet{StepSize: r}
		for trial := 0; trial < 20; trial++ {
			f, erased := nm.Sample(src.SplitN("t", trial))
			if _, err := DecodeFrame(c, dec, f, erased, probs); err != nil {
				t.Fatalf("step %v trial %d: %v", r, trial, err)
			}
		}
	}
}
