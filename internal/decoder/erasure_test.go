package decoder

import (
	"errors"
	"strings"
	"testing"

	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// TestEmptySyndromeShortCircuit is the regression test for the aligned
// empty-syndrome fast paths: on a syndrome-free frame that still contains
// erasures, both cluster-growth decoders must return an empty correction
// WITHOUT invoking growClusters (or peeling). The scratch arena proves the
// negative: growClusters seeds s.uf and peel seeds s.forestUF on first use,
// so both must stay nil after the decode.
func TestEmptySyndromeShortCircuit(t *testing.T) {
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	dg := c.Graph(surfacecode.ZGraph)
	n := c.NumData()
	erased := make([]bool, n)
	// A generous spread of erasures; with no syndromes the correction is
	// provably empty regardless.
	for q := 0; q < n; q += 3 {
		erased[q] = true
	}
	probs := make([]float64, n)
	for q := range probs {
		probs[q] = 0.07
	}
	for _, dec := range []ScratchDecoder{UnionFind{}, SurfNet{}, SurfNet{FiniteErasureGrowth: true}} {
		s := NewScratch()
		corr, err := dec.DecodeWith(Input{
			Graph:     dg,
			Syndromes: nil,
			Erased:    erased,
			ErrorProb: probs,
		}, s)
		if err != nil {
			t.Fatalf("%s: %v", dec.Name(), err)
		}
		if len(corr) != 0 {
			t.Errorf("%s returned a %d-qubit correction on a syndrome-free frame", dec.Name(), len(corr))
		}
		if s.uf != nil {
			t.Errorf("%s invoked cluster growth on a syndrome-free frame", dec.Name())
		}
		if s.forestUF != nil {
			t.Errorf("%s invoked peeling on a syndrome-free frame", dec.Name())
		}
	}
}

// randomErasureInput samples a pure-erasure decoding problem: a random
// erasure mask, errors only on erased qubits, and the resulting syndromes.
// Pure-erasure errors always satisfy the cluster invariant on the erased
// support (each erased qubit's error flips parities inside its own
// component), so peeling the support must always succeed.
func randomErasureInput(c *surfacecode.Code, kind surfacecode.GraphKind, e float64, src *rng.Source) (Input, []int, quantum.Frame) {
	n := c.NumData()
	frame := quantum.NewFrame(n)
	erased := make([]bool, n)
	mixed := [4]quantum.Pauli{quantum.I, quantum.X, quantum.Y, quantum.Z}
	var support []int
	for q := 0; q < n; q++ {
		if src.Bool(e) {
			erased[q] = true
			frame[q] = mixed[src.IntN(4)]
			support = append(support, q) // dense edge index == qubit id
		}
	}
	probs := make([]float64, n)
	for q := range probs {
		probs[q] = 0.05
	}
	in := Input{
		Graph:     c.Graph(kind),
		Syndromes: c.Syndrome(kind, frame),
		Erased:    erased,
		ErrorProb: probs,
	}
	return in, support, frame
}

// TestPeelRandomErasureSupports drives peel through randomly generated
// erasure supports: it must succeed on every pure-erasure input, and the
// correction must exactly clear the syndromes. Components with odd parity
// that touch a boundary only peel cleanly when their tree is rooted at the
// boundary, so success across random supports also exercises the
// boundary-rooted tree preference.
func TestPeelRandomErasureSupports(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		c := surfacecode.MustNew(d, surfacecode.CoreLShape)
		for _, e := range []float64{0.05, 0.2, 0.45} {
			src := rng.New(uint64(d*1000) + uint64(e*100)).Split("peel-prop")
			for trial := 0; trial < 40; trial++ {
				for _, kind := range []surfacecode.GraphKind{surfacecode.ZGraph, surfacecode.XGraph} {
					in, support, frame := randomErasureInput(c, kind, e, src.SplitN("t", trial))
					corr, err := PeelErasure(in, support, nil)
					if err != nil {
						t.Fatalf("d=%d e=%v %v trial %d: %v", d, e, kind, trial, err)
					}
					// The correction must flip only erased qubits and clear
					// the syndrome exactly.
					op := quantum.X
					if kind == surfacecode.XGraph {
						op = quantum.Z
					}
					for _, q := range corr {
						if !in.Erased[q] {
							t.Fatalf("d=%d %v trial %d: correction flips intact qubit %d", d, kind, trial, q)
						}
						frame.Apply(q, op)
					}
					if left := c.Syndrome(kind, frame); len(left) != 0 {
						t.Fatalf("d=%d e=%v %v trial %d: %d syndromes left after peeling", d, e, kind, trial, len(left))
					}
				}
			}
		}
	}
}

// TestPeelClusterInvariantViolation drives peel's error path through
// randomly generated invariant-violating supports: a syndrome whose vertex
// is outside every support component must surface ErrClusterInvariant.
func TestPeelClusterInvariantViolation(t *testing.T) {
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	src := rng.New(31).Split("invariant")
	for trial := 0; trial < 60; trial++ {
		tsrc := src.SplitN("t", trial)
		in, support, _ := randomErasureInput(c, surfacecode.ZGraph, 0.15, tsrc)
		// Inject a lone syndrome at a vertex not covered by the support:
		// its singleton component is odd without boundary contact.
		dg := in.Graph
		inSupport := make([]bool, dg.G.NumVertices())
		for _, ei := range support {
			e := dg.G.Edge(ei)
			inSupport[e.U], inSupport[e.V] = true, true
		}
		lone := -1
		start := tsrc.IntN(dg.NumReal)
		for off := 0; off < dg.NumReal; off++ {
			v := (start + off) % dg.NumReal
			if !inSupport[v] {
				lone = v
				break
			}
		}
		if lone < 0 {
			continue // support covers every vertex; try another trial
		}
		syn := append([]int{}, in.Syndromes...)
		already := false
		for _, v := range syn {
			if v == lone {
				already = true
			}
		}
		if already {
			continue
		}
		syn = append(syn, lone)
		in.Syndromes = syn
		_, err := PeelErasure(in, support, nil)
		if err == nil {
			t.Fatalf("trial %d: peel accepted an invariant-violating support (lone syndrome at %d)", trial, lone)
		}
		if !errors.Is(err, ErrClusterInvariant) {
			t.Fatalf("trial %d: error does not wrap ErrClusterInvariant: %v", trial, err)
		}
		if !strings.Contains(err.Error(), "cluster invariant") {
			t.Fatalf("trial %d: error message lost the invariant diagnosis: %v", trial, err)
		}
	}
}

// TestPeelErasureEmptySyndromes pins the wrapper's own short-circuit.
func TestPeelErasureEmptySyndromes(t *testing.T) {
	c := surfacecode.MustNew(3, surfacecode.CoreLShape)
	in, support, _ := randomErasureInput(c, surfacecode.ZGraph, 0.3, rng.New(8))
	in.Syndromes = nil
	corr, err := PeelErasure(in, support, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(corr) != 0 {
		t.Fatalf("empty-syndrome peel returned %d flips", len(corr))
	}
}
