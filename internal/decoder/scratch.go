package decoder

import (
	"surfnet/internal/graph"
	"surfnet/internal/quantum"
	"surfnet/internal/surfacecode"
)

// Scratch is a reusable decode arena: every slice the cluster-growth engine,
// the peeling decoder, and the frame harness would otherwise allocate per
// call. Monte Carlo loops keep one Scratch per worker and thread it through
// DecodeFrameWith so steady-state decoding stops allocating per trial.
//
// A Scratch is owned by one goroutine at a time; the zero value is ready to
// use. Slices returned by scratch-backed calls (corrections, syndromes,
// Result.Residual) alias the arena and are valid only until the next call
// that receives the same Scratch.
type Scratch struct {
	// Cluster growth (growth.go).
	uf        *graph.UnionFind
	odd       []bool
	boundary  []bool
	growth    []float64
	grown     []bool
	support   []int
	completed []int

	// Peeling (peeling.go).
	forestUF   *graph.UnionFind
	adj        [][]int32
	synMask    []bool
	visited    []bool
	parentEdge []int32
	order      []int
	queue      []int
	corr       []int

	// Frame harness (decoder.go).
	parity   []bool
	zSyn     []int
	xSyn     []int
	residual quantum.Frame

	// MWPM decode-path cache (mwpm.go, mwpm_cache.go): the fingerprinted
	// weighted-graph and Dijkstra-table cache plus the blossom arena.
	// Created lazily by the first MWPM.DecodeWith on this arena.
	mwpm *mwpmScratch
	// probsEpoch is the caller-declared fidelity-vector tag threaded into
	// the MWPM cache on each DecodeWith; see SetProbsEpoch.
	probsEpoch uint64
}

// NewScratch returns an empty arena. Buffers are sized lazily by the first
// decode that uses them.
func NewScratch() *Scratch { return &Scratch{} }

// SetProbsEpoch declares that, until the next call, every ErrorProb vector
// decoded on this arena is fully identified by epoch (a NewProbsEpoch tag):
// equal epoch implies byte-equal ErrorProb contents per graph. The MWPM cache
// then replaces the O(q) fidelity-vector hash with an epoch + erasure-set
// key. Callers whose fidelities can drift (faults) must allocate a fresh
// epoch at every mutation — a stale epoch silently decodes with stale
// weights. Zero (the default) restores the content-hash mode, which is
// always safe. Nil-receiver safe.
func (s *Scratch) SetProbsEpoch(epoch uint64) {
	if s == nil {
		return
	}
	s.probsEpoch = epoch
}

// zSynBuf and xSynBuf expose the syndrome buffers nil-safely, so the frame
// harness can thread them whether or not an arena is in use.
func (s *Scratch) zSynBuf() []int {
	if s == nil {
		return nil
	}
	return s.zSyn
}

func (s *Scratch) xSynBuf() []int {
	if s == nil {
		return nil
	}
	return s.xSyn
}

// growBools returns a zeroed length-n bool slice, reusing buf's capacity.
func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// growFloats returns a zeroed length-n float64 slice, reusing buf's capacity.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growInt32 returns a length-n int32 slice filled with fill, reusing buf.
func growInt32(buf []int32, n int, fill int32) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = fill
	}
	return buf
}

// ufFor returns uf reset to n elements, allocating it on first use.
func ufFor(uf *graph.UnionFind, n int) *graph.UnionFind {
	if uf == nil {
		return graph.NewUnionFind(n)
	}
	uf.Reset(n)
	return uf
}

// adjFor returns a length-nv adjacency scratch with every per-vertex list
// emptied but its capacity kept.
func (s *Scratch) adjFor(nv int) [][]int32 {
	if cap(s.adj) < nv {
		old := s.adj
		s.adj = make([][]int32, nv)
		copy(s.adj, old)
	}
	s.adj = s.adj[:nv]
	for v := range s.adj {
		s.adj[v] = s.adj[v][:0]
	}
	return s.adj
}

// syndrome computes the flipped-parity real vertices of the kind graph for
// frame f — the same quantity as surfacecode.Code.Syndrome — appending into
// out[:0] and reusing the arena's parity buffer.
func (s *Scratch) syndrome(c *surfacecode.Code, kind surfacecode.GraphKind, f quantum.Frame, out []int) []int {
	dg := c.Graph(kind)
	s.parity = growBools(s.parity, dg.NumReal)
	parity := s.parity
	for q, p := range f {
		triggers := (kind == surfacecode.ZGraph && p.HasX()) || (kind == surfacecode.XGraph && p.HasZ())
		if !triggers {
			continue
		}
		e := dg.G.Edge(q)
		if e.U < dg.NumReal {
			parity[e.U] = !parity[e.U]
		}
		if e.V < dg.NumReal {
			parity[e.V] = !parity[e.V]
		}
	}
	out = out[:0]
	for v, on := range parity {
		if on {
			out = append(out, v)
		}
	}
	return out
}
