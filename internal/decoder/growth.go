package decoder

import (
	"fmt"

	"surfnet/internal/graph"
)

// maxGrowthRounds bounds the cluster-growth loop. Growth speeds are clamped
// away from zero (see minErrorProb), so any odd cluster always makes
// progress; the bound only guards against implementation regressions.
const maxGrowthRounds = 1_000_000

// growthConfig parameterizes the shared cluster-growth engine used by both
// the Union-Find baseline and the SurfNet Decoder.
type growthConfig struct {
	// speed returns the growth contribution (in edge units per round) an
	// odd cluster adds to data qubit q's edge.
	speed func(in Input, q int) float64
	// preGrowErasures adds all erased edges to the initial cluster
	// support, the erasure handling of the Union-Find decoder baseline
	// [32]. The SurfNet Decoder instead lets erasures grow at their own
	// (fastest) speed, per Algorithm 2.
	preGrowErasures bool
}

// clusterState tracks per-cluster parity and boundary contact, keyed by
// union-find root. Its buffers live in the decode Scratch.
type clusterState struct {
	uf       *graph.UnionFind
	odd      []bool // odd number of syndromes in cluster
	boundary []bool // cluster touches a virtual boundary vertex
}

func newClusterState(in Input, s *Scratch) clusterState {
	nv := in.Graph.G.NumVertices()
	s.uf = ufFor(s.uf, nv)
	s.odd = growBools(s.odd, nv)
	s.boundary = growBools(s.boundary, nv)
	cs := clusterState{uf: s.uf, odd: s.odd, boundary: s.boundary}
	for _, syn := range in.Syndromes {
		cs.odd[syn] = true
	}
	cs.boundary[in.Graph.BoundaryA()] = true
	cs.boundary[in.Graph.BoundaryB()] = true
	return cs
}

// active reports whether the cluster containing vertex v still needs to grow:
// odd parity and no boundary contact (a boundary absorbs any parity).
func (cs *clusterState) active(v int) bool {
	r := cs.uf.Find(v)
	return cs.odd[r] && !cs.boundary[r]
}

// fuse merges the clusters of u and v, combining parity and boundary flags.
func (cs *clusterState) fuse(u, v int) {
	ru, rv := cs.uf.Find(u), cs.uf.Find(v)
	if ru == rv {
		return
	}
	odd := cs.odd[ru] != cs.odd[rv]
	bnd := cs.boundary[ru] || cs.boundary[rv]
	r, _ := cs.uf.Union(ru, rv)
	cs.odd[r] = odd
	cs.boundary[r] = bnd
}

// anyActive reports whether any odd cluster remains.
func (cs *clusterState) anyActive(in Input) bool {
	for _, syn := range in.Syndromes {
		if cs.active(syn) {
			return true
		}
	}
	return false
}

// growClusters runs the cluster-growth loop (Algorithm 2 lines 1-10) and
// returns the support: the dense edge indices that were grown or pre-grown.
// Growth is synchronous: contributions are computed against the cluster
// state at the start of each round, and fusions happen at the round's end,
// matching the round structure of [32]. The returned slice aliases the
// scratch; a nil Scratch allocates a throwaway arena.
func growClusters(in Input, cfg growthConfig, s *Scratch) ([]int, error) {
	if s == nil {
		s = NewScratch()
	}
	dg := in.Graph
	cs := newClusterState(in, s)
	nE := dg.G.NumEdges()
	s.growth = growFloats(s.growth, nE)
	s.grown = growBools(s.grown, nE)
	growth, grown := s.growth, s.grown
	support := s.support[:0]

	absorb := func(ei int) {
		grown[ei] = true
		support = append(support, ei)
	}
	if cfg.preGrowErasures {
		for ei := 0; ei < nE; ei++ {
			if in.Erased[dg.G.Edge(ei).ID] {
				absorb(ei)
				e := dg.G.Edge(ei)
				cs.fuse(e.U, e.V)
			}
		}
	}

	for round := 0; cs.anyActive(in); round++ {
		if round >= maxGrowthRounds {
			return nil, fmt.Errorf("decoder: cluster growth did not converge after %d rounds", maxGrowthRounds)
		}
		completed := s.completed[:0]
		for ei := 0; ei < nE; ei++ {
			if grown[ei] {
				continue
			}
			e := dg.G.Edge(ei)
			contrib := 0.0
			if cs.active(e.U) {
				contrib += cfg.speed(in, e.ID)
			}
			if cs.active(e.V) {
				contrib += cfg.speed(in, e.ID)
			}
			if contrib == 0 {
				continue
			}
			growth[ei] += contrib
			if growth[ei] >= 1-1e-12 {
				completed = append(completed, ei)
			}
		}
		for _, ei := range completed {
			absorb(ei)
		}
		// Fusions after the scan: clusters meeting in this round merge
		// together (Algorithm 2 line 7).
		for _, ei := range completed {
			e := dg.G.Edge(ei)
			cs.fuse(e.U, e.V)
		}
		s.completed = completed
	}
	s.support = support
	return support, nil
}
