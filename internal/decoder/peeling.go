package decoder

import (
	"fmt"
)

// peel runs the peeling decoder of Delfosse–Zémor on the grown support: it
// extracts a spanning forest (Algorithm 2 line 11), then peels leaf edges
// inward, emitting an edge into the correction whenever the peeled leaf
// vertex holds a live syndrome. Trees containing a boundary vertex are rooted
// there so leftover parity drains into the boundary.
//
// The support must satisfy the cluster invariant: every connected component
// either contains an even number of syndromes or touches a virtual boundary
// vertex. peel returns an error otherwise.
func peel(in Input, support []int) ([]int, error) {
	dg := in.Graph
	nv := dg.G.NumVertices()
	forest := dg.G.SpanningForest(support)

	// Adjacency restricted to forest edges.
	adj := make([][]int32, nv)
	for _, ei := range forest {
		e := dg.G.Edge(ei)
		adj[e.U] = append(adj[e.U], int32(ei))
		adj[e.V] = append(adj[e.V], int32(ei))
	}

	syndrome := make([]bool, nv)
	for _, s := range in.Syndromes {
		syndrome[s] = true
	}

	// Root each tree, preferring boundary vertices; produce a BFS order so
	// that reversing it peels leaves first.
	visited := make([]bool, nv)
	parentEdge := make([]int32, nv)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	var order []int
	bfs := func(root int) {
		visited[root] = true
		queue := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, ei := range adj[v] {
				u := dg.G.Other(int(ei), v)
				if !visited[u] {
					visited[u] = true
					parentEdge[u] = ei
					queue = append(queue, u)
				}
			}
		}
	}
	// Boundary-rooted trees first.
	for _, b := range []int{dg.BoundaryA(), dg.BoundaryB()} {
		if !visited[b] {
			bfs(b)
		}
	}
	for v := 0; v < nv; v++ {
		if !visited[v] && len(adj[v]) > 0 {
			bfs(v)
		}
	}

	// Peel in reverse BFS order: every non-root vertex hands its live
	// syndrome to its parent through its parent edge.
	var corr []int
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		ei := parentEdge[v]
		if ei < 0 {
			continue // tree root
		}
		if syndrome[v] {
			syndrome[v] = false
			corr = append(corr, dg.G.Edge(int(ei)).ID)
			p := dg.G.Other(int(ei), v)
			syndrome[p] = !syndrome[p]
		}
	}
	// All remaining parity must sit on boundary vertices (absorbed) —
	// anything else means the support violated the cluster invariant.
	for v := 0; v < dg.NumReal; v++ {
		if syndrome[v] {
			return nil, fmt.Errorf("decoder: peeling left a live syndrome at vertex %d (support does not satisfy the cluster invariant)", v)
		}
	}
	return corr, nil
}
