package decoder

import (
	"fmt"
)

// peel runs the peeling decoder of Delfosse–Zémor on the grown support: it
// extracts a spanning forest (Algorithm 2 line 11), then peels leaf edges
// inward, emitting an edge into the correction whenever the peeled leaf
// vertex holds a live syndrome. Trees containing a boundary vertex are rooted
// there so leftover parity drains into the boundary.
//
// The support must satisfy the cluster invariant: every connected component
// either contains an even number of syndromes or touches a virtual boundary
// vertex. peel returns an error otherwise. The returned correction aliases
// the scratch; a nil Scratch allocates a throwaway arena.
func peel(in Input, support []int, s *Scratch) ([]int, error) {
	if s == nil {
		s = NewScratch()
	}
	dg := in.Graph
	nv := dg.G.NumVertices()

	// Spanning forest of the support, built on the scratch union-find
	// (equivalent to dg.G.SpanningForest but allocation-free). Forest edges
	// go straight into the restricted adjacency.
	s.forestUF = ufFor(s.forestUF, nv)
	adj := s.adjFor(nv)
	for _, ei := range support {
		e := dg.G.Edge(ei)
		if _, merged := s.forestUF.Union(e.U, e.V); merged {
			adj[e.U] = append(adj[e.U], int32(ei))
			adj[e.V] = append(adj[e.V], int32(ei))
		}
	}

	s.synMask = growBools(s.synMask, nv)
	syndrome := s.synMask
	for _, v := range in.Syndromes {
		syndrome[v] = true
	}

	// Root each tree, preferring boundary vertices; produce a BFS order so
	// that reversing it peels leaves first.
	s.visited = growBools(s.visited, nv)
	visited := s.visited
	s.parentEdge = growInt32(s.parentEdge, nv, -1)
	parentEdge := s.parentEdge
	order := s.order[:0]
	bfs := func(root int) {
		visited[root] = true
		queue := append(s.queue[:0], root)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			for _, ei := range adj[v] {
				u := dg.G.Other(int(ei), v)
				if !visited[u] {
					visited[u] = true
					parentEdge[u] = ei
					queue = append(queue, u)
				}
			}
		}
		s.queue = queue
	}
	// Boundary-rooted trees first.
	for _, b := range []int{dg.BoundaryA(), dg.BoundaryB()} {
		if !visited[b] {
			bfs(b)
		}
	}
	for v := 0; v < nv; v++ {
		if !visited[v] && len(adj[v]) > 0 {
			bfs(v)
		}
	}
	s.order = order

	// Peel in reverse BFS order: every non-root vertex hands its live
	// syndrome to its parent through its parent edge.
	corr := s.corr[:0]
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		ei := parentEdge[v]
		if ei < 0 {
			continue // tree root
		}
		if syndrome[v] {
			syndrome[v] = false
			corr = append(corr, dg.G.Edge(int(ei)).ID)
			p := dg.G.Other(int(ei), v)
			syndrome[p] = !syndrome[p]
		}
	}
	s.corr = corr
	// All remaining parity must sit on boundary vertices (absorbed) —
	// anything else means the support violated the cluster invariant.
	for v := 0; v < dg.NumReal; v++ {
		if syndrome[v] {
			return nil, fmt.Errorf("decoder: peeling left a live syndrome at vertex %d (%w)", v, ErrClusterInvariant)
		}
	}
	return corr, nil
}
