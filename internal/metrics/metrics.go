// Package metrics provides the summary statistics used by the experiment
// harness: streaming mean/variance accumulation and normal-approximation
// confidence intervals over trial results.
package metrics

import "math"

// Summary accumulates scalar observations with Welford's online algorithm.
// The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 || x < s.min {
		s.min = x
	}
	if s.n == 1 || x > s.max {
		s.max = x
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N reports the observation count.
func (s *Summary) N() int { return s.n }

// Mean reports the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min reports the smallest observation. An empty summary reports NaN, so
// "no observations" can never be confused with a real 0.0 extreme.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max reports the largest observation (NaN when empty, like Min).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Variance reports the unbiased sample variance (0 for fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev reports the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr reports the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 reports the half-width of the normal-approximation 95% confidence
// interval around the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// Merge folds another summary into s.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	n := float64(s.n + o.n)
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/n
	s.mean += delta * float64(o.n) / n
	s.n += o.n
}
