package metrics

import (
	"math"
	"testing"

	"surfnet/internal/rng"
)

func TestEmptySummary(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
}

func TestKnownValues(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
}

func TestSingleObservation(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 {
		t.Fatal("single observation: mean only")
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	src := rng.New(9)
	var whole, a, b Summary
	for i := 0; i < 500; i++ {
		x := src.Range(-5, 10)
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged n = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v != %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged variance %v != %v", a.Variance(), whole.Variance())
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Fatal("merging empty changed the summary")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != 2 || b.N() != 2 {
		t.Fatal("merge into empty failed")
	}
}

func TestCIShrinksWithSamples(t *testing.T) {
	src := rng.New(10)
	var small, large Summary
	for i := 0; i < 20; i++ {
		small.Add(src.Float64())
	}
	for i := 0; i < 2000; i++ {
		large.Add(src.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
	// Uniform[0,1): mean ~0.5, stddev ~0.289.
	if math.Abs(large.Mean()-0.5) > 0.03 || math.Abs(large.StdDev()-0.2887) > 0.03 {
		t.Fatalf("uniform stats off: mean %v std %v", large.Mean(), large.StdDev())
	}
}
