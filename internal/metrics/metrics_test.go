package metrics

import (
	"math"
	"testing"

	"surfnet/internal/rng"
)

func TestEmptySummary(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
}

func TestKnownValues(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
}

func TestSingleObservation(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 {
		t.Fatal("single observation: mean only")
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	src := rng.New(9)
	var whole, a, b Summary
	for i := 0; i < 500; i++ {
		x := src.Range(-5, 10)
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged n = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v != %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged variance %v != %v", a.Variance(), whole.Variance())
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Fatal("merging empty changed the summary")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != 2 || b.N() != 2 {
		t.Fatal("merge into empty failed")
	}
}

func TestMinMax(t *testing.T) {
	var s Summary
	// An empty summary must be distinguishable from one that observed 0.0.
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatalf("empty summary: min %v max %v, want NaN/NaN", s.Min(), s.Max())
	}
	s.Add(-3)
	if s.Min() != -3 || s.Max() != -3 {
		t.Fatalf("single observation: min %v max %v, want -3/-3", s.Min(), s.Max())
	}
	for _, x := range []float64{2, -7, 4, 0} {
		s.Add(x)
	}
	if s.Min() != -7 || s.Max() != 4 {
		t.Fatalf("min %v max %v, want -7/4", s.Min(), s.Max())
	}
}

func TestMinMaxAllPositive(t *testing.T) {
	// The zero value's internal min is 0; it must not leak into a summary
	// whose observations are all above zero.
	var s Summary
	for _, x := range []float64{5, 3, 8} {
		s.Add(x)
	}
	if s.Min() != 3 || s.Max() != 8 {
		t.Fatalf("min %v max %v, want 3/8", s.Min(), s.Max())
	}
}

func TestMergeMinMax(t *testing.T) {
	var a, b Summary
	for _, x := range []float64{4, 6} {
		a.Add(x)
	}
	for _, x := range []float64{1, 9} {
		b.Add(x)
	}
	a.Merge(b)
	if a.Min() != 1 || a.Max() != 9 {
		t.Fatalf("merged min %v max %v, want 1/9", a.Min(), a.Max())
	}
	// Merging into empty copies the extremes too.
	var c Summary
	c.Merge(a)
	if c.Min() != 1 || c.Max() != 9 {
		t.Fatalf("merge into empty: min %v max %v, want 1/9", c.Min(), c.Max())
	}
	// Merging empty leaves them unchanged.
	var d Summary
	a.Merge(d)
	if a.Min() != 1 || a.Max() != 9 {
		t.Fatalf("merge of empty changed extremes: min %v max %v", a.Min(), a.Max())
	}
	// Merging two empties stays empty: still NaN extremes, zero count.
	var e, f Summary
	e.Merge(f)
	if e.N() != 0 || !math.IsNaN(e.Min()) || !math.IsNaN(e.Max()) {
		t.Fatalf("empty+empty: n=%d min %v max %v, want 0/NaN/NaN", e.N(), e.Min(), e.Max())
	}
}

func TestCIShrinksWithSamples(t *testing.T) {
	src := rng.New(10)
	var small, large Summary
	for i := 0; i < 20; i++ {
		small.Add(src.Float64())
	}
	for i := 0; i < 2000; i++ {
		large.Add(src.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
	// Uniform[0,1): mean ~0.5, stddev ~0.289.
	if math.Abs(large.Mean()-0.5) > 0.03 || math.Abs(large.StdDev()-0.2887) > 0.03 {
		t.Fatalf("uniform stats off: mean %v std %v", large.Mean(), large.StdDev())
	}
}
