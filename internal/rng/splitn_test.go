package rng

import (
	"fmt"
	"math"
	"testing"
)

// TestSplitNCrossFamilyCollisions enumerates a dense grid of (label, n)
// children under several parent seeds and requires every derived stream seed
// to be unique — including against plain Split children of the same parents.
func TestSplitNCrossFamilyCollisions(t *testing.T) {
	labels := []string{"t", "trial", "sample", "p", "run", "fig8"}
	parents := []uint64{0, 1, 42, 0xdeadbeef, math.MaxUint64}
	seen := make(map[uint64]string)
	record := func(seed uint64, what string) {
		if prev, ok := seen[seed]; ok {
			t.Fatalf("stream seed collision: %s and %s both derive %#x", prev, what, seed)
		}
		seen[seed] = what
	}
	for _, ps := range parents {
		p := New(ps)
		for _, l := range labels {
			record(p.Split(l).Seed(), fmt.Sprintf("Split(%d,%q)", ps, l))
			for n := 0; n < 400; n++ {
				record(p.SplitN(l, n).Seed(), fmt.Sprintf("SplitN(%d,%q,%d)", ps, l, n))
			}
		}
	}
}

// TestSplitNNoAffineAliasing is the regression test for the xor-with-multiple
// weakness: under the old seed ^ hash ^ (n+1)*c construction, two parents
// whose seeds differ by (n1+1)*c ^ (n2+1)*c produced byte-identical streams
// for SplitN(label, n1) and SplitN(label, n2). Routing n through the hash
// must break that algebraic alias.
func TestSplitNNoAffineAliasing(t *testing.T) {
	const c = 0x9e3779b97f4a7c15
	for _, pair := range [][2]int{{3, 7}, {0, 1}, {10, 200}, {5, 5_000_000}} {
		n1, n2 := pair[0], pair[1]
		delta := (uint64(n1)+1)*c ^ (uint64(n2)+1)*c
		s1 := New(123)
		s2 := New(123 ^ delta)
		a := s1.SplitN("t", n1)
		b := s2.SplitN("t", n2)
		if a.Seed() == b.Seed() {
			t.Fatalf("n1=%d n2=%d: affine alias survived (seed %#x)", n1, n2, a.Seed())
		}
		if a.Uint64() == b.Uint64() {
			t.Fatalf("n1=%d n2=%d: aliased streams emit identical first values", n1, n2)
		}
	}
}

// TestSplitNPairwiseDecorrelation checks that adjacent-index children look
// statistically independent: across many (n, n+1) pairs, the first draws of
// the two streams agree on each bit about half the time.
func TestSplitNPairwiseDecorrelation(t *testing.T) {
	p := New(777)
	const pairs = 4000
	var bitAgree [64]int
	for n := 0; n < pairs; n++ {
		a := p.SplitN("trial", n).Uint64()
		b := p.SplitN("trial", n+1).Uint64()
		same := ^(a ^ b)
		for bit := 0; bit < 64; bit++ {
			bitAgree[bit] += int((same >> bit) & 1)
		}
	}
	// Binomial(4000, 0.5): sd ~= 31.6; allow 6 sigma.
	lo, hi := pairs/2-190, pairs/2+190
	for bit, agree := range bitAgree {
		if agree < lo || agree > hi {
			t.Fatalf("bit %d: adjacent streams agree %d/%d times", bit, agree, pairs)
		}
	}
}
