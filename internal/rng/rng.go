// Package rng provides deterministic, splittable random-number streams for
// reproducible simulations.
//
// Every stochastic component of the SurfNet reproduction (error samplers,
// channel processes, topology generation, experiment trials) draws from an
// explicit *Source rather than from global state, so that a run is fully
// determined by its root seed. Sub-streams derived via Split are independent
// for practical purposes and stable across runs: Split(label) always yields
// the same stream for the same parent seed and label.
package rng

import (
	"hash/fnv"
	"math/rand/v2"
)

// Source is a deterministic random stream. It wraps the stdlib PCG generator
// and adds labeled splitting. A Source is not safe for concurrent use; split
// one child per goroutine instead.
type Source struct {
	seed uint64
	rand *rand.Rand
}

// New returns a Source rooted at seed.
func New(seed uint64) *Source {
	return &Source{
		seed: seed,
		rand: rand.New(rand.NewPCG(seed, mix(seed))),
	}
}

// Split derives an independent child stream identified by label. Children
// with distinct labels (or distinct parent seeds) are decorrelated; calling
// Split never perturbs the parent stream.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return New(mix(s.seed ^ h.Sum64()))
}

// SplitN derives the n-th child of a labeled family, e.g. one stream per
// trial index. The index is hashed together with the label rather than
// xor-folded afterwards: the previous seed ^ hash ^ (n+1)*c construction was
// affine in (seed, label-hash, n), so two different (label, n) pairs — or the
// same pair under two related parent seeds — could collide or correlate
// exactly whenever their xor-differences cancelled. Feeding n's bytes through
// the FNV permutation destroys that algebraic structure.
func (s *Source) SplitN(label string, n int) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	var idx [8]byte
	u := uint64(n)
	for i := range idx {
		idx[i] = byte(u >> (8 * i))
	}
	_, _ = h.Write(idx[:])
	return New(mix(s.seed ^ h.Sum64()))
}

// Seed reports the seed this Source was rooted at.
func (s *Source) Seed() uint64 { return s.seed }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rand.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.rand.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.rand.Uint64() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rand.Float64() < p
}

// Range returns a uniform value in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rand.Float64()
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rand.Perm(n) }

// Shuffle randomizes the order of n elements using the provided swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rand.Shuffle(n, swap) }

// mix is the SplitMix64 finalizer, used to decorrelate seeds derived from
// nearby integers.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
