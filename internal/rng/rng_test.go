package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestSplitStability(t *testing.T) {
	root := New(7)
	c1 := root.Split("errors")
	c2 := New(7).Split("errors")
	for i := 0; i < 32; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("Split is not stable across identical parents at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("alpha")
	c2 := root.Split("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently labeled children matched on %d draws", same)
	}
}

func TestSplitDoesNotPerturbParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("child")
	_ = a.SplitN("trial", 3)
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split consumed parent entropy at draw %d", i)
		}
	}
}

func TestSplitNDistinct(t *testing.T) {
	root := New(11)
	seen := map[uint64]int{}
	for n := 0; n < 100; n++ {
		v := root.SplitN("trial", n).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("SplitN(%d) collides with SplitN(%d)", n, prev)
		}
		seen[v] = n
	}
}

func TestBoolEdgeCases(t *testing.T) {
	s := New(3)
	for i := 0; i < 10; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(5)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", got)
	}
}

func TestRangeBounds(t *testing.T) {
	s := New(8)
	for i := 0; i < 1000; i++ {
		v := s.Range(0.75, 1.0)
		if v < 0.75 || v >= 1.0 {
			t.Fatalf("Range(0.75, 1.0) produced %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(21)
	for i := 0; i < 1000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestSeedReported(t *testing.T) {
	if got := New(1234).Seed(); got != 1234 {
		t.Fatalf("Seed() = %d, want 1234", got)
	}
}
