package quantum

import (
	"testing"
	"testing/quick"
)

var allPaulis = []Pauli{I, X, Z, Y}

func TestMulTable(t *testing.T) {
	tests := []struct {
		a, b, want Pauli
	}{
		{I, I, I}, {I, X, X}, {I, Z, Z}, {I, Y, Y},
		{X, X, I}, {Z, Z, I}, {Y, Y, I},
		{X, Z, Y}, {Z, X, Y},
		{X, Y, Z}, {Y, X, Z},
		{Z, Y, X}, {Y, Z, X},
	}
	for _, tt := range tests {
		if got := tt.a.Mul(tt.b); got != tt.want {
			t.Errorf("%v.Mul(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMulGroupProperties(t *testing.T) {
	// Self-inverse, commutative up to phase, associative.
	for _, a := range allPaulis {
		if a.Mul(a) != I {
			t.Errorf("%v is not self-inverse", a)
		}
		for _, b := range allPaulis {
			if a.Mul(b) != b.Mul(a) {
				t.Errorf("Mul not symmetric for %v, %v", a, b)
			}
			for _, c := range allPaulis {
				if a.Mul(b).Mul(c) != a.Mul(b.Mul(c)) {
					t.Errorf("Mul not associative for %v, %v, %v", a, b, c)
				}
			}
		}
	}
}

func TestCommutes(t *testing.T) {
	// I commutes with everything; distinct non-identity Paulis anticommute.
	for _, p := range allPaulis {
		if !I.Commutes(p) || !p.Commutes(I) {
			t.Errorf("identity should commute with %v", p)
		}
		if !p.Commutes(p) {
			t.Errorf("%v should commute with itself", p)
		}
	}
	anti := [][2]Pauli{{X, Z}, {X, Y}, {Z, Y}}
	for _, pair := range anti {
		if pair[0].Commutes(pair[1]) || pair[1].Commutes(pair[0]) {
			t.Errorf("%v and %v should anticommute", pair[0], pair[1])
		}
	}
}

func TestComponents(t *testing.T) {
	tests := []struct {
		p          Pauli
		hasX, hasZ bool
	}{
		{I, false, false},
		{X, true, false},
		{Z, false, true},
		{Y, true, true},
	}
	for _, tt := range tests {
		if tt.p.HasX() != tt.hasX || tt.p.HasZ() != tt.hasZ {
			t.Errorf("%v: HasX=%v HasZ=%v, want %v %v",
				tt.p, tt.p.HasX(), tt.p.HasZ(), tt.hasX, tt.hasZ)
		}
	}
}

func TestStringAndValid(t *testing.T) {
	want := map[Pauli]string{I: "I", X: "X", Z: "Z", Y: "Y"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("String(%d) = %q, want %q", uint8(p), p.String(), s)
		}
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	if Pauli(0).Valid() || Pauli(5).Valid() {
		t.Error("out-of-range Pauli values should be invalid")
	}
}

func TestInvalidPauliPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("using an invalid Pauli should panic")
		}
	}()
	Pauli(0).Mul(X)
}

func TestFrameBasics(t *testing.T) {
	f := NewFrame(4)
	if f.Weight() != 0 {
		t.Fatalf("new frame weight = %d, want 0", f.Weight())
	}
	f.Apply(1, X)
	f.Apply(2, Z)
	f.Apply(2, X) // Z*X = Y
	if f[1] != X || f[2] != Y {
		t.Fatalf("frame = %v, want [I X Y I]", f)
	}
	if f.Weight() != 2 {
		t.Fatalf("weight = %d, want 2", f.Weight())
	}
}

func TestFrameCompose(t *testing.T) {
	f := NewFrame(3)
	f.Apply(0, X)
	g := NewFrame(3)
	g.Apply(0, Z)
	g.Apply(1, Y)
	f.Compose(g)
	if f[0] != Y || f[1] != Y || f[2] != I {
		t.Fatalf("composed frame = %v, want [Y Y I]", f)
	}
}

func TestFrameComposeSelfInverse(t *testing.T) {
	check := func(seed uint8) bool {
		f := NewFrame(8)
		for i := range f {
			f[i] = allPaulis[(int(seed)+i*3)%4]
		}
		g := f.Clone()
		f.Compose(g)
		return f.Weight() == 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameComposeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("composing frames of different lengths should panic")
		}
	}()
	NewFrame(2).Compose(NewFrame(3))
}

func TestFrameCloneIsIndependent(t *testing.T) {
	f := NewFrame(2)
	g := f.Clone()
	g.Apply(0, X)
	if f[0] != I {
		t.Fatal("Clone shares storage with original")
	}
}
