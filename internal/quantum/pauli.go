// Package quantum provides the Pauli-frame algebra and the fidelity/noise
// arithmetic used throughout the SurfNet reproduction.
//
// The paper restricts channel errors to Pauli errors and erasure errors with
// error-free measurements (§I, §IV). Under that model a surface code never
// needs amplitude-level simulation: the state of every data qubit is tracked
// as a Pauli frame, syndromes are parity functions of the frame, and logical
// failure is a parity check against the logical operators. This package holds
// the frame algebra; internal/surfacecode builds the codes on top of it.
package quantum

import "fmt"

// Pauli is a single-qubit Pauli operator, ignoring global phase. The zero
// value is invalid so that uninitialized frames are caught early; identity is
// explicit.
type Pauli uint8

// The four Pauli operators. Values are chosen so that the X component is bit 0
// and the Z component is bit 1, making composition a XOR.
const (
	I Pauli = 1 + iota // identity
	X                  // bit flip
	Z                  // phase flip
	Y                  // both (Y = iXZ, phase ignored)
)

// bits maps a Pauli to its (x, z) symplectic bits.
func (p Pauli) bits() (x, z uint8) {
	switch p {
	case I:
		return 0, 0
	case X:
		return 1, 0
	case Z:
		return 0, 1
	case Y:
		return 1, 1
	default:
		panic(fmt.Sprintf("quantum: invalid Pauli %d", uint8(p)))
	}
}

// fromBits maps symplectic bits back to a Pauli.
func fromBits(x, z uint8) Pauli {
	switch {
	case x == 0 && z == 0:
		return I
	case x == 1 && z == 0:
		return X
	case x == 0 && z == 1:
		return Z
	default:
		return Y
	}
}

// Mul composes two Paulis (up to global phase): Mul(X, Z) == Y.
func (p Pauli) Mul(q Pauli) Pauli {
	px, pz := p.bits()
	qx, qz := q.bits()
	return fromBits(px^qx, pz^qz)
}

// HasX reports whether the operator contains an X component (X or Y), i.e.
// whether it flips measure-Z stabilizers.
func (p Pauli) HasX() bool {
	x, _ := p.bits()
	return x == 1
}

// HasZ reports whether the operator contains a Z component (Z or Y), i.e.
// whether it flips measure-X stabilizers.
func (p Pauli) HasZ() bool {
	_, z := p.bits()
	return z == 1
}

// Commutes reports whether p and q commute. Two Paulis anticommute exactly
// when their symplectic product is odd.
func (p Pauli) Commutes(q Pauli) bool {
	px, pz := p.bits()
	qx, qz := q.bits()
	return (px*qz+pz*qx)%2 == 0
}

// IsIdentity reports whether p is the identity.
func (p Pauli) IsIdentity() bool { return p == I }

// Valid reports whether p is one of the four defined operators.
func (p Pauli) Valid() bool { return p >= I && p <= Y }

// String implements fmt.Stringer.
func (p Pauli) String() string {
	switch p {
	case I:
		return "I"
	case X:
		return "X"
	case Z:
		return "Z"
	case Y:
		return "Y"
	default:
		return fmt.Sprintf("Pauli(%d)", uint8(p))
	}
}

// Frame is a Pauli frame over a register of qubits: element i is the
// accumulated Pauli error on qubit i.
type Frame []Pauli

// NewFrame returns an identity frame over n qubits.
func NewFrame(n int) Frame {
	f := make(Frame, n)
	for i := range f {
		f[i] = I
	}
	return f
}

// Apply composes p onto qubit i.
func (f Frame) Apply(i int, p Pauli) { f[i] = f[i].Mul(p) }

// Compose XORs another frame into f. Both frames must have the same length.
func (f Frame) Compose(g Frame) {
	if len(f) != len(g) {
		panic(fmt.Sprintf("quantum: frame length mismatch %d != %d", len(f), len(g)))
	}
	for i, p := range g {
		f[i] = f[i].Mul(p)
	}
}

// Clone returns a copy of the frame.
func (f Frame) Clone() Frame {
	g := make(Frame, len(f))
	copy(g, f)
	return g
}

// Weight returns the number of non-identity entries.
func (f Frame) Weight() int {
	w := 0
	for _, p := range f {
		if !p.IsIdentity() {
			w++
		}
	}
	return w
}
