package quantum

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPathFidelity(t *testing.T) {
	tests := []struct {
		gammas []float64
		want   float64
	}{
		{nil, 1},
		{[]float64{0.9}, 0.9},
		{[]float64{0.9, 0.8}, 0.72},
		{[]float64{1, 1, 1}, 1},
		{[]float64{0.5, 0.5}, 0.25},
	}
	for _, tt := range tests {
		if got := PathFidelity(tt.gammas); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("PathFidelity(%v) = %v, want %v", tt.gammas, got, tt.want)
		}
	}
}

func TestPurifyKnownValues(t *testing.T) {
	// rho1 = rho2 = 0.9: 0.81 / (0.81 + 0.01) = 81/82.
	if got := Purify(0.9, 0.9); !almostEqual(got, 81.0/82.0, 1e-12) {
		t.Errorf("Purify(0.9, 0.9) = %v, want %v", got, 81.0/82.0)
	}
	// Purifying with a perfect pair yields a perfect pair.
	if got := Purify(0.7, 1.0); !almostEqual(got, 1.0, 1e-12) {
		t.Errorf("Purify(0.7, 1) = %v, want 1", got)
	}
	// Maximally mixed inputs stay maximally mixed.
	if got := Purify(0.5, 0.5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Purify(0.5, 0.5) = %v, want 0.5", got)
	}
	// Degenerate denominator falls back to 0.5.
	if got := Purify(0, 1); got != 0.5 {
		t.Errorf("Purify(0, 1) = %v, want 0.5", got)
	}
}

func TestPurifyImproves(t *testing.T) {
	// For both inputs above 1/2, the output exceeds the larger input's
	// complement-weighted mean; in particular it exceeds min(rho1, rho2)
	// and, for equal inputs, exceeds the input itself.
	check := func(a, b float64) bool {
		r1 := 0.5 + 0.5*math.Abs(math.Mod(a, 1))
		r2 := 0.5 + 0.5*math.Abs(math.Mod(b, 1))
		out := Purify(r1, r2)
		return out >= math.Min(r1, r2)-1e-12 && out <= 1+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
	if Purify(0.8, 0.8) <= 0.8 {
		t.Error("equal-input purification above 0.5 should strictly improve")
	}
}

func TestPurifySymmetric(t *testing.T) {
	check := func(a, b float64) bool {
		r1 := math.Abs(math.Mod(a, 1))
		r2 := math.Abs(math.Mod(b, 1))
		return almostEqual(Purify(r1, r2), Purify(r2, r1), 1e-12)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPurifyNMonotone(t *testing.T) {
	prev := 0.75
	for n := 1; n <= 9; n++ {
		got := PurifyN(0.75, n)
		if got < prev {
			t.Fatalf("PurifyN(0.75, %d) = %v decreased from %v", n, got, prev)
		}
		prev = got
	}
	if PurifyN(0.75, 0) != 0.75 {
		t.Error("PurifyN with n=0 should be the identity")
	}
	// N=9 purification of a mediocre pair should be near-perfect.
	if PurifyN(0.75, 9) < 0.999 {
		t.Errorf("PurifyN(0.75, 9) = %v, want > 0.999", PurifyN(0.75, 9))
	}
}

func TestNoiseRoundTrip(t *testing.T) {
	for _, g := range []float64{1, 0.99, 0.9, 0.75, 0.5, 0.1} {
		mu := Noise(g)
		if back := FidelityFromNoise(mu); !almostEqual(back, g, 1e-12) {
			t.Errorf("round trip of gamma=%v gave %v", g, back)
		}
	}
	if Noise(1) != 0 {
		t.Error("Noise(1) should be 0")
	}
	if !math.IsInf(Noise(0), 1) {
		t.Error("Noise(0) should be +Inf")
	}
}

func TestNoiseAdditivity(t *testing.T) {
	// Summing noises along a path equals the noise of the product fidelity.
	gammas := []float64{0.9, 0.8, 0.95}
	sum := 0.0
	for _, g := range gammas {
		sum += Noise(g)
	}
	if want := Noise(PathFidelity(gammas)); !almostEqual(sum, want, 1e-12) {
		t.Errorf("noise sum = %v, product noise = %v", sum, want)
	}
}

func TestEdgeWeight(t *testing.T) {
	// Erasure fidelity 0.5 gives weight ln 2.
	if got := EdgeWeight(ErasureFidelity); !almostEqual(got, math.Ln2, 1e-12) {
		t.Errorf("EdgeWeight(0.5) = %v, want ln 2", got)
	}
	// Perfect qubits get infinite weight; hopeless qubits get zero.
	if !math.IsInf(EdgeWeight(1), 1) {
		t.Error("EdgeWeight(1) should be +Inf")
	}
	if EdgeWeight(0) != 0 {
		t.Error("EdgeWeight(0) should be 0")
	}
	// Monotone: higher fidelity, higher weight.
	if EdgeWeight(0.9) <= EdgeWeight(0.6) {
		t.Error("EdgeWeight should increase with fidelity")
	}
}

func TestGrowthSpeed(t *testing.T) {
	const r = 2.0 / 3.0
	// Erasures grow fastest: -r/ln(0.5) = r/ln2.
	er := GrowthSpeed(ErasureFidelity, r)
	if !almostEqual(er, r/math.Ln2, 1e-12) {
		t.Errorf("GrowthSpeed(0.5, r) = %v, want %v", er, r/math.Ln2)
	}
	hi := GrowthSpeed(0.99, r)
	if hi >= er {
		t.Error("high-fidelity qubits must grow slower than erasures")
	}
	if GrowthSpeed(1, r) != 0 {
		t.Error("perfect qubits should not grow at all")
	}
	if !math.IsInf(GrowthSpeed(0, r), 1) {
		t.Error("zero-fidelity qubits grow instantly")
	}
}

func TestCheckFidelity(t *testing.T) {
	for _, ok := range []float64{0, 0.5, 1} {
		if err := CheckFidelity(ok); err != nil {
			t.Errorf("CheckFidelity(%v) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if err := CheckFidelity(bad); err == nil {
			t.Errorf("CheckFidelity(%v) = nil, want error", bad)
		}
	}
}
