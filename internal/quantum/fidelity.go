package quantum

import (
	"errors"
	"fmt"
	"math"
)

// ErrFidelityRange is returned when a fidelity argument falls outside [0, 1].
var ErrFidelityRange = errors.New("quantum: fidelity outside [0, 1]")

// ErasureFidelity is the estimated fidelity of an erased data qubit. The
// paper substitutes each erased qubit with a maximally mixed state (uniform
// {I, X, Y, Z}), so its estimated fidelity equals 0.5 (§IV-C).
const ErasureFidelity = 0.5

// CheckFidelity validates that g lies in [0, 1].
func CheckFidelity(g float64) error {
	if math.IsNaN(g) || g < 0 || g > 1 {
		return fmt.Errorf("%w: %v", ErrFidelityRange, g)
	}
	return nil
}

// PathFidelity returns the estimated fidelity of a qubit that traversed the
// given sequence of optical fibers: rho = prod_i gamma_i (§IV-C).
func PathFidelity(gammas []float64) float64 {
	rho := 1.0
	for _, g := range gammas {
		rho *= g
	}
	return rho
}

// Purify returns the estimated fidelity after one round of entanglement
// purification consuming two pairs of fidelity rho1 and rho2:
//
//	rho' = rho1*rho2 / (rho1*rho2 + (1-rho1)*(1-rho2))
//
// (§IV-C, citing Li et al. [11]). The formula is symmetric and maps two
// better-than-half pairs to a pair better than either input.
func Purify(rho1, rho2 float64) float64 {
	num := rho1 * rho2
	den := num + (1-rho1)*(1-rho2)
	if den == 0 {
		// Both inputs were exactly 0 and 1 in some combination that
		// annihilates the denominator; the only real case is
		// rho1+rho2 == 1 with product 0, where purification carries no
		// information. Return the maximally mixed estimate.
		return 0.5
	}
	return num / den
}

// PurifyN applies N successive purification rounds, each consuming one
// additional pair of the same raw fidelity rho. This models the paper's
// "Purification N=1,2,9" baselines, where N counts the extra pairs consumed
// per optical fiber (§VI-B).
func PurifyN(rho float64, n int) float64 {
	out := rho
	for i := 0; i < n; i++ {
		out = Purify(out, rho)
	}
	return out
}

// Noise converts an optical-fiber fidelity gamma into its additive noise
// mu = log2(1/gamma) (§V-A). Summing noises along a path is equivalent to
// multiplying fidelities; lower is better.
func Noise(gamma float64) float64 {
	if gamma <= 0 {
		return math.Inf(1)
	}
	return math.Log2(1 / gamma)
}

// FidelityFromNoise inverts Noise: gamma = 2^(-mu).
func FidelityFromNoise(mu float64) float64 {
	return math.Pow(2, -mu)
}

// FlipProb converts a channel fidelity gamma into the per-decoding-graph
// flip probability of the corresponding depolarizing (Werner) channel: the
// infidelity 1-gamma spreads uniformly over the three Pauli errors, two of
// which are visible on each graph, so p = 2(1-gamma)/3.
func FlipProb(gamma float64) float64 {
	p := 2 * (1 - gamma) / 3
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// EdgeWeight computes the decoding-graph weight of a data qubit with
// estimated fidelity rho: w = -ln(1 - rho) (§IV-C). Higher-fidelity qubits
// receive larger weights, making decoders reluctant to route corrections
// through them.
func EdgeWeight(rho float64) float64 {
	p := 1 - rho
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= 1 {
		return 0
	}
	return -math.Log(p)
}

// GrowthSpeed computes the SurfNet Decoder cluster growth speed for a data
// qubit with estimated fidelity rho and decoder step size r:
// speed = -r / ln(1 - rho) = r / EdgeWeight(rho), measured in edge units per
// growth round (§IV-C, Algorithm 2). Erased qubits use rho = 0.5 and grow
// fastest.
func GrowthSpeed(rho, r float64) float64 {
	w := EdgeWeight(rho)
	if math.IsInf(w, 1) {
		return 0
	}
	if w == 0 {
		return math.Inf(1)
	}
	return r / w
}
