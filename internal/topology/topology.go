// Package topology generates the random network scenarios of the paper's
// evaluation (§VI-A/B): Barabási–Albert graphs with more than 20 nodes, the
// most-connected nodes assigned as servers and switches, and per-fiber
// fidelities drawn from the good ([0.75, 1]) or poor ([0.5, 1]) connection
// ranges.
package topology

import (
	"fmt"
	"sort"

	"surfnet/internal/network"
	"surfnet/internal/rng"
)

// FidelityRange is a uniform fiber-fidelity distribution.
type FidelityRange struct {
	Lo, Hi float64
}

// The paper's two connection-quality ranges (§VI-B).
var (
	GoodConnection = FidelityRange{Lo: 0.75, Hi: 1.0}
	PoorConnection = FidelityRange{Lo: 0.5, Hi: 1.0}
)

// Facilities captures how well-equipped a scenario is (§VI-A: abundant,
// sufficient, insufficient facilities).
type Facilities struct {
	Name string
	// ServerFrac and SwitchFrac are the fractions of (most-connected)
	// nodes assigned as servers and switches.
	ServerFrac, SwitchFrac float64
	// SwitchCapacity is eta_r for switches; servers hold ServerFactor
	// times more.
	SwitchCapacity int
	// ServerFactor scales server capacity relative to switches.
	ServerFactor int
	// EntPairs is eta_e: prepared entangled pairs per fiber per round.
	EntPairs int
	// EntRate is the per-slot entanglement generation success
	// probability used by the online execution engine.
	EntRate float64
	// LossProb is the per-fiber plain-channel photon loss probability.
	LossProb float64
}

// The three facility scenarios of Fig. 6(a).
var (
	Abundant = Facilities{
		Name: "abundant", ServerFrac: 0.20, SwitchFrac: 0.45,
		SwitchCapacity: 250, ServerFactor: 2, EntPairs: 80,
		EntRate: 0.7, LossProb: 0.05,
	}
	Sufficient = Facilities{
		Name: "sufficient", ServerFrac: 0.15, SwitchFrac: 0.40,
		SwitchCapacity: 150, ServerFactor: 2, EntPairs: 42,
		EntRate: 0.55, LossProb: 0.08,
	}
	Insufficient = Facilities{
		Name: "insufficient", ServerFrac: 0.10, SwitchFrac: 0.35,
		SwitchCapacity: 90, ServerFactor: 2, EntPairs: 28,
		EntRate: 0.45, LossProb: 0.12,
	}
)

// Params fully specifies a random scenario.
type Params struct {
	// Nodes is the node count; the paper uses "over 20 nodes".
	Nodes int
	// Attach is the Barabási–Albert attachment count m (edges added per
	// new node).
	Attach int
	Facilities
	Fidelity FidelityRange
}

// DefaultParams returns the paper-scale scenario: a 24-node BA graph with
// attachment 2.
func DefaultParams(f Facilities, fr FidelityRange) Params {
	return Params{Nodes: 24, Attach: 2, Facilities: f, Fidelity: fr}
}

// BarabasiAlbert generates the edge set of a BA graph on n nodes with
// attachment m using preferential attachment. The first m+1 nodes form a
// clique seed so every node has degree >= m and the graph is connected.
func BarabasiAlbert(n, m int, src *rng.Source) ([][2]int, error) {
	if n < m+1 || m < 1 {
		return nil, fmt.Errorf("topology: need n >= m+1 >= 2, got n=%d m=%d", n, m)
	}
	var edges [][2]int
	// Repeated-endpoint list for preferential attachment.
	var ends []int
	addEdge := func(a, b int) {
		edges = append(edges, [2]int{a, b})
		ends = append(ends, a, b)
	}
	for i := 0; i < m+1; i++ {
		for j := i + 1; j < m+1; j++ {
			addEdge(i, j)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			t := ends[src.IntN(len(ends))]
			chosen[t] = true
		}
		for _, t := range sortedKeys(chosen) {
			addEdge(v, t)
		}
	}
	return edges, nil
}

// Generate builds a random network scenario: BA topology, degree-ranked role
// assignment ("the most connected nodes chosen to be the servers and
// switches", §VI-B), uniform fiber fidelities, and facility capacities.
func Generate(p Params, src *rng.Source) (*network.Network, error) {
	edges, err := BarabasiAlbert(p.Nodes, p.Attach, src.Split("ba"))
	if err != nil {
		return nil, err
	}
	degree := make([]int, p.Nodes)
	for _, e := range edges {
		degree[e[0]]++
		degree[e[1]]++
	}
	byDegree := make([]int, p.Nodes)
	for i := range byDegree {
		byDegree[i] = i
	}
	sort.SliceStable(byDegree, func(a, b int) bool {
		return degree[byDegree[a]] > degree[byDegree[b]]
	})
	nServers := max(1, int(float64(p.Nodes)*p.ServerFrac))
	nSwitches := max(1, int(float64(p.Nodes)*p.SwitchFrac))
	roles := make([]network.Role, p.Nodes)
	for i, v := range byDegree {
		switch {
		case i < nServers:
			roles[v] = network.Server
		case i < nServers+nSwitches:
			roles[v] = network.Switch
		default:
			roles[v] = network.User
		}
	}
	nodes := make([]network.Node, p.Nodes)
	for i := range nodes {
		capacity := 0
		switch roles[i] {
		case network.Switch:
			capacity = p.SwitchCapacity
		case network.Server:
			capacity = p.SwitchCapacity * p.ServerFactor
		}
		nodes[i] = network.Node{ID: i, Role: roles[i], Capacity: capacity}
	}
	fsrc := src.Split("fidelity")
	fibers := make([]network.Fiber, len(edges))
	for i, e := range edges {
		fibers[i] = network.Fiber{
			ID: i, A: e[0], B: e[1],
			Fidelity: fsrc.Range(p.Fidelity.Lo, p.Fidelity.Hi),
			EntPairs: p.EntPairs,
			EntRate:  p.EntRate,
			LossProb: p.LossProb,
		}
	}
	return network.New(nodes, fibers)
}

// GenRequests draws k communication requests between distinct random users,
// each carrying 1..maxMessages surface codes (§VI-B varies "number of
// requests, and number of messages in each request").
func GenRequests(net *network.Network, k, maxMessages int, src *rng.Source) ([]network.Request, error) {
	users := net.NodesByRole(network.User)
	if len(users) < 2 {
		return nil, fmt.Errorf("topology: need at least 2 users, have %d", len(users))
	}
	if maxMessages < 1 {
		return nil, fmt.Errorf("topology: maxMessages must be >= 1, got %d", maxMessages)
	}
	reqs := make([]network.Request, k)
	for i := range reqs {
		s := users[src.IntN(len(users))]
		d := users[src.IntN(len(users))]
		for d == s {
			d = users[src.IntN(len(users))]
		}
		reqs[i] = network.Request{Src: s, Dst: d, Messages: 1 + src.IntN(maxMessages)}
	}
	return reqs, nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
