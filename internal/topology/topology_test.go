package topology

import (
	"testing"

	"surfnet/internal/network"
	"surfnet/internal/rng"
)

func TestBarabasiAlbertStructure(t *testing.T) {
	src := rng.New(1)
	edges, err := BarabasiAlbert(24, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	// Clique seed of 3 nodes (3 edges) + 21 nodes x 2 edges.
	want := 3 + 21*2
	if len(edges) != want {
		t.Fatalf("edges = %d, want %d", len(edges), want)
	}
	// No self-loops; every node appears.
	deg := make([]int, 24)
	for _, e := range edges {
		if e[0] == e[1] {
			t.Fatalf("self-loop %v", e)
		}
		deg[e[0]]++
		deg[e[1]]++
	}
	for v, d := range deg {
		if d < 2 {
			t.Errorf("node %d has degree %d < m", v, d)
		}
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := BarabasiAlbert(2, 2, src); err == nil {
		t.Error("n < m+1 should fail")
	}
	if _, err := BarabasiAlbert(10, 0, src); err == nil {
		t.Error("m < 1 should fail")
	}
}

func TestBarabasiAlbertPreferentialAttachment(t *testing.T) {
	// Hubs should emerge: max degree well above the minimum.
	src := rng.New(7)
	edges, err := BarabasiAlbert(100, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, 100)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8 {
		t.Errorf("max degree %d; preferential attachment should create hubs", maxDeg)
	}
}

func TestGenerateScenario(t *testing.T) {
	for _, fac := range []Facilities{Abundant, Sufficient, Insufficient} {
		for _, fr := range []FidelityRange{GoodConnection, PoorConnection} {
			net, err := Generate(DefaultParams(fac, fr), rng.New(99))
			if err != nil {
				t.Fatalf("%s: %v", fac.Name, err)
			}
			if net.NumNodes() != 24 {
				t.Fatalf("%s: %d nodes", fac.Name, net.NumNodes())
			}
			servers := net.NodesByRole(network.Server)
			switches := net.NodesByRole(network.Switch)
			users := net.NodesByRole(network.User)
			if len(servers) == 0 || len(switches) == 0 || len(users) < 2 {
				t.Fatalf("%s: roles %d/%d/%d", fac.Name, len(servers), len(switches), len(users))
			}
			// Servers are drawn from the most-connected nodes: the
			// min server degree must be >= the max user degree.
			deg := make([]int, net.NumNodes())
			for i := 0; i < net.NumFibers(); i++ {
				f := net.Fiber(i)
				deg[f.A]++
				deg[f.B]++
			}
			minServer := 1 << 30
			for _, s := range servers {
				if deg[s] < minServer {
					minServer = deg[s]
				}
			}
			maxUser := 0
			for _, u := range users {
				if deg[u] > maxUser {
					maxUser = deg[u]
				}
			}
			if minServer < maxUser {
				t.Errorf("%s: server degree %d below user degree %d", fac.Name, minServer, maxUser)
			}
			// Fidelities respect the range; capacities follow roles.
			for i := 0; i < net.NumFibers(); i++ {
				f := net.Fiber(i)
				if f.Fidelity < fr.Lo || f.Fidelity >= fr.Hi {
					t.Fatalf("%s: fiber fidelity %v outside [%v,%v)", fac.Name, f.Fidelity, fr.Lo, fr.Hi)
				}
				if f.EntPairs != fac.EntPairs {
					t.Fatalf("%s: fiber EntPairs %d, want %d", fac.Name, f.EntPairs, fac.EntPairs)
				}
			}
			for _, s := range servers {
				if net.Node(s).Capacity != fac.SwitchCapacity*fac.ServerFactor {
					t.Errorf("%s: server capacity %d", fac.Name, net.Node(s).Capacity)
				}
			}
			for _, u := range users {
				if net.Node(u).Capacity != 0 {
					t.Errorf("%s: user has capacity", fac.Name)
				}
			}
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(DefaultParams(Sufficient, GoodConnection), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultParams(Sufficient, GoodConnection), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumFibers() != b.NumFibers() {
		t.Fatal("fiber counts differ across identical seeds")
	}
	for i := 0; i < a.NumFibers(); i++ {
		if a.Fiber(i) != b.Fiber(i) {
			t.Fatalf("fiber %d differs across identical seeds", i)
		}
	}
}

func TestGenRequests(t *testing.T) {
	net, err := Generate(DefaultParams(Sufficient, GoodConnection), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := GenRequests(net, 15, 4, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 15 {
		t.Fatalf("got %d requests", len(reqs))
	}
	for i, r := range reqs {
		if err := r.Validate(net); err != nil {
			t.Errorf("request %d invalid: %v", i, err)
		}
		if r.Messages < 1 || r.Messages > 4 {
			t.Errorf("request %d messages %d outside [1,4]", i, r.Messages)
		}
	}
	if _, err := GenRequests(net, 5, 0, rng.New(1)); err == nil {
		t.Error("maxMessages 0 should fail")
	}
}
