package surfnet

import (
	"surfnet/internal/experiments"
)

// ExperimentConfig parameterizes the network experiments (Fig. 6, Fig. 7).
type ExperimentConfig = experiments.Config

// DefaultExperiments returns interactively sized experiment settings; raise
// Trials toward the paper's 1080 for publication-grade error bars.
func DefaultExperiments() ExperimentConfig { return experiments.DefaultConfig() }

// Fig6aRow is one cell of the Fig. 6(a) Raw-vs-SurfNet comparison.
type Fig6aRow = experiments.Fig6aRow

// Fig6a reproduces the Fig. 6(a) tables and fidelity plots.
func Fig6a(cfg ExperimentConfig) ([]Fig6aRow, error) { return experiments.Fig6a(cfg) }

// SweepPoint is one x-value of a Fig. 6(b) parameter sweep.
type SweepPoint = experiments.SweepPoint

// Fig6b1 sweeps facility capacity (Fig. 6(b.1)); nil selects the defaults.
func Fig6b1(cfg ExperimentConfig, factors []float64) ([]SweepPoint, error) {
	return experiments.Fig6b1(cfg, factors)
}

// Fig6b2 sweeps the entanglement generation rate (Fig. 6(b.2)).
func Fig6b2(cfg ExperimentConfig, factors []float64) ([]SweepPoint, error) {
	return experiments.Fig6b2(cfg, factors)
}

// Fig6b3 sweeps messages per request (Fig. 6(b.3)).
func Fig6b3(cfg ExperimentConfig, messages []int) ([]SweepPoint, error) {
	return experiments.Fig6b3(cfg, messages)
}

// Fig6b4 sweeps the routing fidelity threshold 1/2^Wc (Fig. 6(b.4)).
func Fig6b4(cfg ExperimentConfig, coreThresholds []float64) ([]SweepPoint, error) {
	return experiments.Fig6b4(cfg, coreThresholds)
}

// Fig7Row is one bar of the five-design fidelity comparison.
type Fig7Row = experiments.Fig7Row

// Fig7 reproduces the overall comparison of all five designs across the four
// facility/connection scenarios.
func Fig7(cfg ExperimentConfig) ([]Fig7Row, error) { return experiments.Fig7(cfg) }

// Fig8Config parameterizes the decoder threshold study.
type Fig8Config = experiments.Fig8Config

// DefaultFig8 returns the paper's Fig. 8 settings (d = 9..15, p = 5-8.5%,
// erasure 15%, Union-Find vs SurfNet Decoder).
func DefaultFig8() Fig8Config { return experiments.DefaultFig8Config() }

// Fig8Point is one point of a Fig. 8 threshold curve.
type Fig8Point = experiments.Fig8Point

// Fig8 reproduces the decoder threshold plots.
func Fig8(cfg Fig8Config) ([]Fig8Point, error) { return experiments.Fig8(cfg) }

// EstimateThreshold locates a decoder's error threshold from its Fig. 8
// curves (NaN when the swept range does not bracket it).
func EstimateThreshold(points []Fig8Point, decoderName string) float64 {
	return experiments.EstimateThreshold(points, decoderName)
}

// FormatFig6a renders the Fig. 6(a) comparison as an aligned text table.
func FormatFig6a(rows []Fig6aRow) string { return experiments.FormatFig6a(rows) }

// FormatSweep renders a Fig. 6(b) sweep with a caller-supplied x label.
func FormatSweep(xLabel string, points []SweepPoint) string {
	return experiments.FormatSweep(xLabel, points)
}

// FormatFig7 renders the five-design fidelity comparison.
func FormatFig7(rows []Fig7Row) string { return experiments.FormatFig7(rows) }

// FormatFig8 renders the threshold study, one block per decoder.
func FormatFig8(points []Fig8Point) string { return experiments.FormatFig8(points) }

// ResilienceRow is one cell of the fault-intensity resilience sweep.
type ResilienceRow = experiments.ResilienceRow

// Resilience sweeps fault intensity for SurfNet against the Raw and
// purification-2 baselines; nil selects the default intensities.
func Resilience(cfg ExperimentConfig, intensities []float64) ([]ResilienceRow, error) {
	return experiments.Resilience(cfg, intensities)
}

// ResilienceProfile returns the sweep's fault scenario at a given intensity.
func ResilienceProfile(intensity float64) FaultProfile {
	return experiments.ResilienceProfile(intensity)
}

// FormatResilience renders the resilience sweep as an aligned text table.
func FormatResilience(rows []ResilienceRow) string { return experiments.FormatResilience(rows) }
