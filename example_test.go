package surfnet_test

import (
	"fmt"

	"surfnet"
)

// ExampleDecode corrects a single bulk error on a distance-5 code with the
// SurfNet Decoder.
func ExampleDecode() {
	code, err := surfnet.NewCode(5, surfnet.CoreLShape)
	if err != nil {
		fmt.Println(err)
		return
	}
	frame := surfnet.NewFrame(code.NumData())
	frame[code.NumData()/2] = surfnet.X
	erased := make([]bool, code.NumData())
	probs := make([]float64, code.NumData())
	for i := range probs {
		probs[i] = 0.05
	}
	res, err := surfnet.Decode(code, surfnet.NewSurfNetDecoder(0), frame, erased, probs)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("logical error:", res.Failed())
	// Output:
	// logical error: false
}

// ExampleCode_CoreSize shows the paper's Core-axis count (d-1)+(d-2).
func ExampleCode_CoreSize() {
	for _, d := range []int{3, 5, 9, 15} {
		code, err := surfnet.NewCode(d, surfnet.CoreLShape)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("d=%d: %d data qubits, %d in the Core\n", d, code.NumData(), code.CoreSize())
	}
	// Output:
	// d=3: 13 data qubits, 3 in the Core
	// d=5: 41 data qubits, 7 in the Core
	// d=9: 145 data qubits, 15 in the Core
	// d=15: 421 data qubits, 27 in the Core
}

// ExampleScheduleRoutes schedules one request on a fixed line network.
func ExampleScheduleRoutes() {
	nodes := []surfnet.Node{
		{ID: 0, Role: surfnet.User},
		{ID: 1, Role: surfnet.Switch, Capacity: 200},
		{ID: 2, Role: surfnet.Server, Capacity: 400},
		{ID: 3, Role: surfnet.Switch, Capacity: 200},
		{ID: 4, Role: surfnet.User},
	}
	var fibers []surfnet.Fiber
	for i := 0; i < 4; i++ {
		fibers = append(fibers, surfnet.Fiber{
			ID: i, A: i, B: i + 1, Fidelity: 0.8, EntPairs: 50, EntRate: 0.6, LossProb: 0.05,
		})
	}
	net, err := surfnet.NewNetwork(nodes, fibers)
	if err != nil {
		fmt.Println(err)
		return
	}
	sched, err := surfnet.ScheduleRoutes(net,
		[]surfnet.Request{{Src: 0, Dst: 4, Messages: 2}},
		surfnet.DefaultRouting(surfnet.DesignSurfNet))
	if err != nil {
		fmt.Println(err)
		return
	}
	rs := sched.Requests[0]
	fmt.Printf("accepted %d codes; error correction at servers %v\n",
		rs.Accepted(), rs.Codes[0].Servers)
	// Output:
	// accepted 2 codes; error correction at servers [2]
}
