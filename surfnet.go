// Package surfnet is a from-scratch Go implementation of SurfNet, the
// dual-channel quantum network of "Quantum Network Routing based on Surface
// Code Error Correction" (Hu, Wu, Li — ICDCS 2024).
//
// SurfNet encodes every message into a surface code and splits it into a
// Core part — the qubits critical to the decoder's logical error rate,
// teleported over an entanglement-based channel — and a Support part,
// transmitted directly as photons over a plain channel. Error correction at
// servers along the route keeps accumulated channel noise below the routing
// thresholds.
//
// The package is a facade over the internal subsystems:
//
//   - Codes and noise: NewCode, UniformNoise (internal/surfacecode)
//   - Decoders: NewSurfNetDecoder, NewUnionFindDecoder, NewMWPMDecoder,
//     Decode (internal/decoder, internal/matching)
//   - Topology and scenarios: GenerateNetwork, GenRequests
//     (internal/topology, internal/network)
//   - Routing: Schedule, ScheduleGreedy (internal/routing, internal/lp)
//   - Online execution: Execute (internal/core)
//   - Paper experiments: the Fig6a/Fig6b*/Fig7/Fig8 entry points
//     (internal/experiments)
//
// Everything is deterministic under an explicit seed and uses only the Go
// standard library.
package surfnet

import (
	"surfnet/internal/decoder"
	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// Code is a planar surface code with its Core/Support partition.
type Code = surfacecode.Code

// CoreLayout selects the fixed Core-part geometry.
type CoreLayout = surfacecode.CoreLayout

// Core layouts.
const (
	// CoreLShape is the default fixed topology: one Core qubit per
	// internal logical axis along the left and top boundary cuts.
	CoreLShape = surfacecode.CoreLShape
	// CoreDiagonal scatters the Core along two diagonals (ablation).
	CoreDiagonal = surfacecode.CoreDiagonal
)

// NewCode constructs a distance-d planar surface code (d >= 2).
func NewCode(distance int, layout CoreLayout) (*Code, error) {
	return surfacecode.New(distance, layout)
}

// NoiseModel is a per-qubit Pauli + erasure channel.
type NoiseModel = surfacecode.NoiseModel

// UniformNoise builds the Fig. 8 channel: Pauli rate p and erasure rate e
// everywhere, halved on Core qubits.
func UniformNoise(c *Code, pauliRate, erasureRate float64) *NoiseModel {
	return surfacecode.UniformNoise(c, pauliRate, erasureRate)
}

// Decoder corrects one decoding graph of a surface code.
type Decoder = decoder.Decoder

// DecodeResult reports the outcome of decoding both graphs of a code.
type DecodeResult = decoder.Result

// NewSurfNetDecoder returns the SurfNet Decoder (Algorithm 2) with the
// paper's default step size r = 2/3; pass a non-zero stepSize to override.
func NewSurfNetDecoder(stepSize float64) Decoder {
	return decoder.SurfNet{StepSize: stepSize}
}

// NewUnionFindDecoder returns the Union-Find baseline decoder.
func NewUnionFindDecoder() Decoder { return decoder.UnionFind{} }

// NewMWPMDecoder returns the modified minimum-weight perfect-matching
// decoder (Algorithm 1) backed by the built-in blossom solver.
func NewMWPMDecoder() Decoder { return decoder.MWPM{} }

// Decode samples nothing: it corrects the given error frame and erasure mask
// on both graphs of c and reports logical failure. errProb gives the
// per-qubit single-graph error probability the decoder should assume (use
// NoiseModel.EdgeErrorProb for channel-matched priors).
func Decode(c *Code, dec Decoder, frame Frame, erased []bool, errProb []float64) (DecodeResult, error) {
	return decoder.DecodeFrame(c, dec, frame, erased, errProb)
}

// Pauli is a single-qubit Pauli operator.
type Pauli = quantum.Pauli

// Pauli operators.
const (
	I = quantum.I
	X = quantum.X
	Z = quantum.Z
	Y = quantum.Y
)

// Frame is a Pauli error frame over a code's data qubits.
type Frame = quantum.Frame

// NewFrame returns an identity frame over n qubits.
func NewFrame(n int) Frame { return quantum.NewFrame(n) }

// Rand is a deterministic, splittable randomness source.
type Rand = rng.Source

// NewRand returns a source rooted at seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }
